package repro

import (
	"path/filepath"
	"testing"
)

func oocTxns() [][]int {
	// Deterministic small workload with a planted pattern {1,2,3}.
	var out [][]int
	for i := 0; i < 400; i++ {
		switch i % 4 {
		case 0:
			out = append(out, []int{1, 2, 3, 10 + i%7})
		case 1:
			out = append(out, []int{1, 2, 20 + i%5})
		case 2:
			out = append(out, []int{3, 30 + i%9, 40 + i%3})
		default:
			out = append(out, []int{50 + i%11})
		}
	}
	return out
}

func TestMineOutOfCoreUnlimited(t *testing.T) {
	res, stats, err := MineOutOfCore(OOCConfig{MinSupport: 0.1, MinConfidence: 0.5}, oocTxns())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions != 0 {
		t.Errorf("unlimited run evicted: %+v", stats)
	}
	found := false
	for _, f := range res.LargeItemsets {
		if len(f.Items) == 3 && f.Items[0] == 1 && f.Items[1] == 2 && f.Items[2] == 3 {
			found = true
			if f.Support != 100 {
				t.Errorf("support({1,2,3}) = %d, want 100", f.Support)
			}
		}
	}
	if !found {
		t.Error("planted pattern {1,2,3} not found")
	}
	if len(res.Rules) == 0 {
		t.Error("no rules derived")
	}
}

func TestMineOutOfCoreOverTCPMatchesUnlimited(t *testing.T) {
	txns := oocTxns()
	want, _, err := MineOutOfCore(OOCConfig{MinSupport: 0.1}, txns)
	if err != nil {
		t.Fatal(err)
	}
	addr, closer, err := StartMemoryServer("127.0.0.1:0", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	for _, pol := range []Policy{SimpleSwapping, RemoteUpdate} {
		got, stats, err := MineOutOfCore(OOCConfig{
			MinSupport: 0.1,
			LimitBytes: 50, // below even three pair-candidates: force spilling
			Policy:     pol,
			Servers:    []string{addr},
			HashLines:  64,
		}, txns)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if stats.Evictions == 0 {
			t.Errorf("%v: no spilling under a 200-byte budget", pol)
		}
		if len(got.LargeItemsets) != len(want.LargeItemsets) {
			t.Fatalf("%v: %d large itemsets, want %d", pol, len(got.LargeItemsets), len(want.LargeItemsets))
		}
		for i := range want.LargeItemsets {
			a, b := got.LargeItemsets[i], want.LargeItemsets[i]
			if a.Support != b.Support || len(a.Items) != len(b.Items) {
				t.Fatalf("%v: itemset %d differs: %+v vs %+v", pol, i, a, b)
			}
		}
	}
}

func TestMineOutOfCoreSpillFile(t *testing.T) {
	txns := oocTxns()
	res, stats, err := MineOutOfCore(OOCConfig{
		MinSupport: 0.1,
		LimitBytes: 50,
		SpillFile:  filepath.Join(t.TempDir(), "spill.bin"),
		HashLines:  64,
	}, txns)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults == 0 {
		t.Error("file spill exercised no faults")
	}
	if len(res.LargeItemsets) == 0 {
		t.Error("no results")
	}
}

func TestMineOutOfCoreValidation(t *testing.T) {
	if _, _, err := MineOutOfCore(OOCConfig{MinSupport: 0.1}, nil); err == nil {
		t.Error("empty transactions accepted")
	}
	if _, _, err := MineOutOfCore(OOCConfig{MinSupport: 0.1, LimitBytes: 100}, oocTxns()); err == nil {
		t.Error("limit without destination accepted")
	}
	if _, _, err := MineOutOfCore(OOCConfig{
		MinSupport: 0.1, LimitBytes: 100, Servers: []string{"127.0.0.1:1"},
	}, oocTxns()); err == nil {
		t.Error("unreachable server accepted")
	}
}
